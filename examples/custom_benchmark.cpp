/// Define a custom benchmark profile (instead of the SPEC2000 catalog),
/// run it through the full CMP simulator, and show the trace-file API for
/// users who want to bring their own traces.
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <vector>

#include "core/factory.h"
#include "sim/cmp.h"
#include "sim/parallel.h"
#include "sim/report.h"
#include "trace/generator.h"
#include "trace/trace_io.h"

int main() {
  using namespace mflush;

  // A deliberately nasty pointer-chasing workload: 40 % of loads chase the
  // previous load's result through a 32 MB region — every miss serializes.
  BenchmarkProfile chaser;
  chaser.name = "chaser";
  chaser.f_load = 0.32;
  chaser.f_store = 0.06;
  chaser.f_branch = 0.10;
  chaser.strands = 2;
  chaser.p_chase = 0.40;
  chaser.hot_lines = 96;
  chaser.l2_lines = 6000;
  chaser.mem_lines = 1 << 19;
  chaser.p_l2 = 0.10;
  chaser.p_mem = 0.03;
  chaser.icache_lines = 80;

  // A well-behaved compute companion.
  BenchmarkProfile vector_kernel;
  vector_kernel.name = "vector-kernel";
  vector_kernel.f_load = 0.25;
  vector_kernel.f_store = 0.10;
  vector_kernel.f_branch = 0.06;
  vector_kernel.f_fp = 0.5;
  vector_kernel.strands = 6;
  vector_kernel.p_stream = 0.4;
  vector_kernel.stream_lines = 1 << 13;
  vector_kernel.p_l2 = 0.02;
  vector_kernel.p_mem = 0.001;
  vector_kernel.icache_lines = 48;

  std::cout << "Custom 2-context SMT core: 'chaser' + 'vector-kernel'\n\n";
  const std::vector<PolicySpec> policies = {
      PolicySpec::icount(), PolicySpec::flush_spec(30), PolicySpec::mflush()};
  std::vector<SimMetrics> metrics(policies.size());
  ParallelRunner::shared().for_each_index(policies.size(), [&](std::size_t i) {
    CmpSimulator sim({chaser, vector_kernel}, policies[i]);
    sim.run(20'000);
    sim.reset_stats();
    sim.run(60'000);
    metrics[i] = sim.metrics();
  });
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const SimMetrics& m = metrics[i];
    std::cout << policies[i].label() << ": IPC " << m.ipc << " (chaser "
              << m.per_thread_ipc[0] << ", vector-kernel "
              << m.per_thread_ipc[1] << "), " << m.flush_events
              << " flushes\n";
  }

  // Trace-file round trip: capture a slice of the synthetic stream in the
  // portable binary format (users can write this format from their own
  // tooling and replay it through VectorTraceSource).
  SyntheticTraceSource source(chaser, /*seed=*/7, /*window=*/4096);
  std::vector<TraceInstr> slice;
  for (SeqNo s = 0; s < 10'000; ++s) slice.push_back(source.at(s));
  const auto path =
      (std::filesystem::temp_directory_path() / "chaser.mflt").string();
  write_trace(path, slice);
  const auto loaded = read_trace(path);
  std::cout << "\nwrote+reloaded " << loaded.size() << " instructions via "
            << path << "\n";
  std::remove(path.c_str());
  return 0;
}
