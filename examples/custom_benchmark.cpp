/// Define a custom benchmark profile (instead of the SPEC2000 catalog),
/// run it through the full CMP simulator, and show the trace-file API for
/// users who want to bring their own traces.
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <vector>

#include "core/factory.h"
#include "sim/backend.h"
#include "sim/report.h"
#include "trace/generator.h"
#include "trace/trace_io.h"

int main() {
  using namespace mflush;

  // A deliberately nasty pointer-chasing workload: 40 % of loads chase the
  // previous load's result through a 32 MB region — every miss serializes.
  BenchmarkProfile chaser;
  chaser.name = "chaser";
  chaser.f_load = 0.32;
  chaser.f_store = 0.06;
  chaser.f_branch = 0.10;
  chaser.strands = 2;
  chaser.p_chase = 0.40;
  chaser.hot_lines = 96;
  chaser.l2_lines = 6000;
  chaser.mem_lines = 1 << 19;
  chaser.p_l2 = 0.10;
  chaser.p_mem = 0.03;
  chaser.icache_lines = 80;

  // A well-behaved compute companion.
  BenchmarkProfile vector_kernel;
  vector_kernel.name = "vector-kernel";
  vector_kernel.f_load = 0.25;
  vector_kernel.f_store = 0.10;
  vector_kernel.f_branch = 0.06;
  vector_kernel.f_fp = 0.5;
  vector_kernel.strands = 6;
  vector_kernel.p_stream = 0.4;
  vector_kernel.stream_lines = 1 << 13;
  vector_kernel.p_l2 = 0.02;
  vector_kernel.p_mem = 0.001;
  vector_kernel.icache_lines = 48;

  std::cout << "Custom 2-context SMT core: 'chaser' + 'vector-kernel'\n\n";
  // Ad-hoc chips are experiment data too: a JobSpec can embed the raw
  // BenchmarkProfiles (one per hardware context), so custom workloads run
  // on any backend — including `mflushsim --worker` subprocesses, which
  // rebuild the chip from the serialized profiles in the job file.
  const std::vector<PolicySpec> policies = {
      PolicySpec::icount(), PolicySpec::flush_spec(30), PolicySpec::mflush()};
  std::vector<JobSpec> jobs;
  for (std::size_t i = 0; i < policies.size(); ++i) {
    JobSpec j;
    j.id = static_cast<std::uint32_t>(i);
    j.workload.name = "chaser+vector-kernel";
    j.profiles = {chaser, vector_kernel};
    j.policy = policies[i];
    j.warmup = 20'000;
    j.measure = 60'000;
    jobs.push_back(std::move(j));
  }
  InProcessBackend backend;
  for (const RunResult& r : backend.run_collect(jobs)) {
    const SimMetrics& m = r.metrics;
    std::cout << r.policy << ": IPC " << m.ipc << " (chaser "
              << m.per_thread_ipc[0] << ", vector-kernel "
              << m.per_thread_ipc[1] << "), " << m.flush_events
              << " flushes\n";
  }

  // Trace-file round trip: capture a slice of the synthetic stream in the
  // portable binary format (users can write this format from their own
  // tooling and replay it through VectorTraceSource).
  SyntheticTraceSource source(chaser, /*seed=*/7, /*window=*/4096);
  std::vector<TraceInstr> slice;
  for (SeqNo s = 0; s < 10'000; ++s) slice.push_back(source.at(s));
  const auto path =
      (std::filesystem::temp_directory_path() / "chaser.mflt").string();
  write_trace(path, slice);
  const auto loaded = read_trace(path);
  std::cout << "\nwrote+reloaded " << loaded.size() << " instructions via "
            << path << "\n";
  std::remove(path.c_str());
  return 0;
}
