/// Reproduce the paper's §3.2 analysis interactively: replicate the same
/// SMT core 1..4 times around the shared L2 and watch the L2 hit time —
/// and the MFLUSH operational environment (MT, Barrier) — react.
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/factory.h"
#include "core/mflush.h"
#include "sim/backend.h"
#include "sim/cmp.h"
#include "sim/workloads.h"
#include "trace/spec2000.h"

int main() {
  using namespace mflush;

  // The replicated pair: twolf + vpr (scattered working sets, lots of L2
  // hit traffic — the access pattern whose latency disperses).
  std::cout << "Replicating a (twolf, vpr) SMT core around one shared L2\n\n";

  Table table({"cores", "MT", "barrier@22", "IPC", "L2-hit mean", "p50",
               "p90"});
  const MemConfig mem_cfg;
  // The four chip sizes are four profile-built jobs on the in-process
  // backend — each replication level is an independent simulation.
  std::vector<JobSpec> jobs;
  for (std::uint32_t cores = 1; cores <= 4; ++cores) {
    JobSpec j;
    j.id = cores - 1;
    j.workload.name = "twolf+vpr x" + std::to_string(cores);
    for (std::uint32_t c = 0; c < cores; ++c) {
      j.profiles.push_back(*spec2000::by_name("twolf"));
      j.profiles.push_back(*spec2000::by_name("vpr"));
    }
    j.policy = PolicySpec::mflush();
    j.warmup = 20'000;
    j.measure = 60'000;
    jobs.push_back(std::move(j));
  }
  InProcessBackend backend;
  const std::vector<RunResult> results = backend.run_collect(jobs);
  for (std::uint32_t cores = 1; cores <= 4; ++cores) {
    const SimMetrics& m = results[cores - 1].metrics;

    // The MFLUSH operational environment for this chip (Fig. 6).
    MflushConfig mc;
    mc.min_latency = mem_cfg.min_l2_roundtrip();
    mc.max_latency = mem_cfg.max_l2_roundtrip();
    mc.mt = mem_cfg.multicore_traffic(cores);
    MflushPolicy probe(mc);

    table.add_row({std::to_string(cores), std::to_string(mc.mt),
                   std::to_string(probe.barrier_for_bank(0)),
                   Table::num(m.ipc), Table::num(m.l2_hit_time_mean, 1),
                   Table::num(m.l2_hit_time_p50, 1),
                   Table::num(m.l2_hit_time_p90, 1)});
  }
  table.print(std::cout);
  std::cout << "\nMT = (bus 4 + bank 15) x (cores-1); Barrier = MCReg + "
               "MIN/2 + MT.\nThe growing dispersion is why a fixed FLUSH "
               "trigger stops working (paper, Fig. 4).\n";
  return 0;
}
