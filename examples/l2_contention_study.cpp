/// Reproduce the paper's §3.2 analysis interactively: replicate the same
/// SMT core 1..4 times around the shared L2 and watch the L2 hit time —
/// and the MFLUSH operational environment (MT, Barrier) — react.
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/factory.h"
#include "core/mflush.h"
#include "sim/cmp.h"
#include "sim/parallel.h"
#include "sim/workloads.h"
#include "trace/spec2000.h"

int main() {
  using namespace mflush;

  // The replicated pair: twolf + vpr (scattered working sets, lots of L2
  // hit traffic — the access pattern whose latency disperses).
  std::cout << "Replicating a (twolf, vpr) SMT core around one shared L2\n\n";

  Table table({"cores", "MT", "barrier@22", "IPC", "L2-hit mean", "p50",
               "p90"});
  const MemConfig mem_cfg;
  // The four chip sizes are independent simulations: run them in parallel.
  std::vector<SimMetrics> metrics(4);
  ParallelRunner::shared().for_each_index(4, [&](std::size_t i) {
    const auto cores = static_cast<std::uint32_t>(i) + 1;
    std::vector<BenchmarkProfile> profiles;
    for (std::uint32_t c = 0; c < cores; ++c) {
      profiles.push_back(*spec2000::by_name("twolf"));
      profiles.push_back(*spec2000::by_name("vpr"));
    }
    CmpSimulator sim(profiles, PolicySpec::mflush());
    sim.run(20'000);
    sim.reset_stats();
    sim.run(60'000);
    metrics[i] = sim.metrics();
  });
  for (std::uint32_t cores = 1; cores <= 4; ++cores) {
    const SimMetrics& m = metrics[cores - 1];

    // The MFLUSH operational environment for this chip (Fig. 6).
    MflushConfig mc;
    mc.min_latency = mem_cfg.min_l2_roundtrip();
    mc.max_latency = mem_cfg.max_l2_roundtrip();
    mc.mt = mem_cfg.multicore_traffic(cores);
    MflushPolicy probe(mc);

    table.add_row({std::to_string(cores), std::to_string(mc.mt),
                   std::to_string(probe.barrier_for_bank(0)),
                   Table::num(m.ipc), Table::num(m.l2_hit_time_mean, 1),
                   Table::num(m.l2_hit_time_p50, 1),
                   Table::num(m.l2_hit_time_p90, 1)});
  }
  table.print(std::cout);
  std::cout << "\nMT = (bus 4 + bank 15) x (cores-1); Barrier = MCReg + "
               "MIN/2 + MT.\nThe growing dispersion is why a fixed FLUSH "
               "trigger stops working (paper, Fig. 4).\n";
  return 0;
}
