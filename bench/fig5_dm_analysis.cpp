/// Figure 5 — "Detection Moment Analysis".
///
/// Throughput of speculative FLUSH across trigger values 30..150 plus the
/// non-speculative FL-NS, on (a) workload 8W3 and (b) the special 8-thread
/// bzip2/twolf mix where instances of the two applications never share a
/// core. Paper result: the best trigger is workload-dependent (50 for 8W3,
/// 90 for bzip2/twolf; FL-NS best overall on 8W3) — no static choice wins.
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/factory.h"
#include "sim/cmp.h"
#include "sim/parallel.h"
#include "sim/workloads.h"

int main() {
  using namespace mflush;

  const Cycle warm = warmup_cycles();
  const Cycle measure = bench_cycles();
  std::cout << "== Figure 5: FLUSH trigger sweep (Detection Moment analysis)"
            << "\n   measured " << measure << " cycles after " << warm
            << " warm-up\n\n";

  const std::vector<Workload> subjects = {
      *workloads::by_name("8W3"), workloads::bzip2_twolf_special()};

  std::vector<PolicySpec> policies;
  for (const Cycle trigger : {30u, 50u, 70u, 90u, 110u, 130u, 150u})
    policies.push_back(PolicySpec::flush_spec(trigger));
  policies.push_back(PolicySpec::flush_ns());

  // The whole trigger sweep (2 subjects x 8 policies) runs as one parallel
  // batch; table rendering below consumes the slots in order.
  struct PointStats {
    double ipc = 0.0;
    std::uint64_t flushes = 0;
    std::uint64_t false_flushes = 0;
  };
  std::vector<PointStats> stats(subjects.size() * policies.size());
  ParallelRunner::shared().for_each_index(stats.size(), [&](std::size_t i) {
    const Workload& w = subjects[i / policies.size()];
    const PolicySpec& p = policies[i % policies.size()];
    CmpSimulator sim(w, p);
    sim.run(warm);
    sim.reset_stats();
    sim.run(measure);
    const SimMetrics m = sim.metrics();
    PointStats& out = stats[i];
    out.ipc = m.ipc;
    out.flushes = m.flush_events;
    for (CoreId c = 0; c < sim.num_cores(); ++c)
      out.false_flushes += sim.core(c).policy().counters().flushes_on_hit;
  });

  for (std::size_t s = 0; s < subjects.size(); ++s) {
    const Workload& w = subjects[s];
    std::cout << "-- " << w.name << " (" << w.describe() << ")\n";
    Table table({"policy", "IPC", "flushes", "false-miss flushes"});
    std::string best;
    double best_ipc = 0.0;
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      const PointStats& ps = stats[s * policies.size() + pi];
      if (ps.ipc > best_ipc) {
        best_ipc = ps.ipc;
        best = policies[pi].label();
      }
      table.add_row({policies[pi].label(), Table::num(ps.ipc),
                     std::to_string(ps.flushes),
                     std::to_string(ps.false_flushes)});
    }
    table.print(std::cout);
    std::cout << "best: " << best << "\n\n";
  }
  std::cout << "(paper: best trigger is 50 on 8W3 — FL-NS best overall — "
               "and 90 on bzip2/twolf)\n";
  return 0;
}
