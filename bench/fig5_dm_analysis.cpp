/// Figure 5 — "Detection Moment Analysis".
///
/// Throughput of speculative FLUSH across trigger values 30..150 plus the
/// non-speculative FL-NS, on (a) workload 8W3 and (b) the special 8-thread
/// bzip2/twolf mix where instances of the two applications never share a
/// core. Paper result: the best trigger is workload-dependent (50 for 8W3,
/// 90 for bzip2/twolf; FL-NS best overall on 8W3) — no static choice wins.
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/factory.h"
#include "sim/experiment.h"
#include "sim/workloads.h"

int main() {
  using namespace mflush;

  const Cycle warm = warmup_cycles();
  const Cycle measure = bench_cycles();
  std::cout << "== Figure 5: FLUSH trigger sweep (Detection Moment analysis)"
            << "\n   measured " << measure << " cycles after " << warm
            << " warm-up\n\n";

  const std::vector<Workload> subjects = {
      *workloads::by_name("8W3"), workloads::bzip2_twolf_special()};

  std::vector<PolicySpec> policies;
  for (const Cycle trigger : {30u, 50u, 70u, 90u, 110u, 130u, 150u})
    policies.push_back(PolicySpec::flush_spec(trigger));
  policies.push_back(PolicySpec::flush_ns());

  for (const Workload& w : subjects) {
    std::cout << "-- " << w.name << " (" << w.describe() << ")\n";
    Table table({"policy", "IPC", "flushes", "false-miss flushes"});
    std::string best;
    double best_ipc = 0.0;
    for (const PolicySpec& p : policies) {
      CmpSimulator sim(w, p);
      sim.run(warm);
      sim.reset_stats();
      sim.run(measure);
      const SimMetrics m = sim.metrics();
      std::uint64_t false_flushes = 0;
      for (CoreId c = 0; c < sim.num_cores(); ++c)
        false_flushes += sim.core(c).policy().counters().flushes_on_hit;
      if (m.ipc > best_ipc) {
        best_ipc = m.ipc;
        best = p.label();
      }
      table.add_row({p.label(), Table::num(m.ipc),
                     std::to_string(m.flush_events),
                     std::to_string(false_flushes)});
    }
    table.print(std::cout);
    std::cout << "best: " << best << "\n\n";
  }
  std::cout << "(paper: best trigger is 50 on 8W3 — FL-NS best overall — "
               "and 90 on bzip2/twolf)\n";
  return 0;
}
