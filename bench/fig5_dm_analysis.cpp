/// Figure 5 — "Detection Moment Analysis".
///
/// Throughput of speculative FLUSH across trigger values 30..150 plus the
/// non-speculative FL-NS, on (a) workload 8W3 and (b) the special 8-thread
/// bzip2/twolf mix where instances of the two applications never share a
/// core. Paper result: the best trigger is workload-dependent (50 for 8W3,
/// 90 for bzip2/twolf; FL-NS best overall on 8W3) — no static choice wins.
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/factory.h"
#include "sim/backend.h"
#include "sim/workloads.h"

int main() {
  using namespace mflush;

  // The whole trigger sweep (2 subjects x 8 policies) as one declarative
  // experiment; table rendering below consumes the job-id-ordered slots.
  ExperimentSpec spec;
  spec.name = "fig5_dm_analysis";
  spec.workloads = {*workloads::by_name("8W3"),
                    workloads::bzip2_twolf_special()};
  for (const Cycle trigger : {30u, 50u, 70u, 90u, 110u, 130u, 150u})
    spec.policies.push_back(PolicySpec::flush_spec(trigger));
  spec.policies.push_back(PolicySpec::flush_ns());
  spec.warmup = warmup_cycles();
  spec.measure = bench_cycles();

  std::cout << "== Figure 5: FLUSH trigger sweep (Detection Moment analysis)"
            << "\n   measured " << spec.measure << " cycles after "
            << spec.warmup << " warm-up\n\n";

  InProcessBackend backend;
  const std::vector<RunResult> results = run_experiment(spec, backend);

  const std::size_t num_policies = spec.policies.size();
  for (std::size_t s = 0; s < spec.workloads.size(); ++s) {
    const Workload& w = spec.workloads[s];
    std::cout << "-- " << w.name << " (" << w.describe() << ")\n";
    Table table({"policy", "IPC", "flushes", "false-miss flushes"});
    std::string best;
    double best_ipc = 0.0;
    for (std::size_t pi = 0; pi < num_policies; ++pi) {
      const SimMetrics& m = results[s * num_policies + pi].metrics;
      if (m.ipc > best_ipc) {
        best_ipc = m.ipc;
        best = spec.policies[pi].label();
      }
      table.add_row({spec.policies[pi].label(), Table::num(m.ipc),
                     std::to_string(m.flush_events),
                     std::to_string(m.policy_flushes_on_hit)});
    }
    table.print(std::cout);
    std::cout << "best: " << best << "\n\n";
  }
  std::cout << "(paper: best trigger is 50 on 8W3 — FL-NS best overall — "
               "and 90 on bzip2/twolf)\n";
  return 0;
}
