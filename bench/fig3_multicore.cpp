/// Figure 3 — "Average throughput in multicore CMP+SMT configurations".
///
/// All 20 xWy workloads, each on its Fig. 1 chip (x/2 cores), ICOUNT vs
/// FLUSH-S30. Paper result: the single-core FLUSH advantage decays with
/// core count and becomes a ~9 % average slowdown at 4 cores.
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/factory.h"
#include "sim/backend.h"
#include "sim/report.h"
#include "sim/workloads.h"

int main() {
  using namespace mflush;

  // One declarative experiment over the whole catalog (all 20 xWy
  // workloads x 2 policies); rows come back in workload order.
  ExperimentSpec spec;
  spec.name = "fig3_multicore";
  for (const std::uint32_t threads : {2u, 4u, 6u, 8u})
    for (const Workload& w : workloads::of_size(threads))
      spec.workloads.push_back(w);
  spec.policies = {PolicySpec::icount(), PolicySpec::flush_spec(30)};
  spec.warmup = warmup_cycles();
  spec.measure = bench_cycles();

  std::cout << "== Figure 3: FLUSH-S30 vs ICOUNT as SMT cores are replicated"
            << "\n   measured " << spec.measure << " cycles after "
            << spec.warmup << " warm-up (paper: 120M)\n\n";

  InProcessBackend backend;
  const auto rows =
      report::as_grid(run_experiment(spec, backend), spec.policies.size());

  Table table({"threads", "cores", "ICOUNT", "FLUSH-S30", "FLUSH vs ICOUNT"});
  std::size_t row = 0;
  for (const std::uint32_t threads : {2u, 4u, 6u, 8u}) {
    double ic_sum = 0.0, fl_sum = 0.0;
    const auto set = workloads::of_size(threads);
    for (std::size_t i = 0; i < set.size(); ++i, ++row) {
      ic_sum += rows[row][0].metrics.ipc;
      fl_sum += rows[row][1].metrics.ipc;
    }
    const double n = static_cast<double>(set.size());
    table.add_row({std::to_string(threads), std::to_string(threads / 2),
                   Table::num(ic_sum / n), Table::num(fl_sum / n),
                   Table::pct(fl_sum / ic_sum - 1.0)});
  }
  table.print(std::cout);
  std::cout << "\n(paper: +22% at 1 core decaying to -9% at 4 cores)\n";
  return 0;
}
