/// Figures 9 and 10 — "Energy Consumption" distribution and the
/// "Energy Consumption Factor" table.
///
/// These are the model constants the paper derives from Folegnani &
/// González's ISCA-28 analysis; this binary prints them and self-checks
/// their invariants (accumulated = running sum of local; commit = 1 unit).
#include <cmath>
#include <iostream>

#include "common/table.h"
#include "energy/factors.h"

int main() {
  using namespace mflush;

  std::cout << "== Figure 9(a): energy distribution per resource\n\n";
  Table dist({"resource", "fraction"});
  for (const auto& r : energy::kResourceShares)
    dist.add_row({r.resource, Table::num(r.fraction, 2)});
  dist.print(std::cout);

  std::cout << "\n== Figure 10: Energy Consumption Factor\n\n";
  Table table({"pipeline stage", "local", "accumulated"});
  for (const auto& f : energy::kFactors) {
    table.add_row({to_string(f.stage), Table::num(f.local, 2),
                   Table::num(f.accumulated, 2)});
  }
  table.print(std::cout);

  // Self-checks (non-zero exit on violation so CI catches drift).
  double acc = 0.0;
  for (const auto& f : energy::kFactors) {
    acc += f.local;
    if (std::abs(f.accumulated - acc) > 1e-9) {
      std::cerr << "FAIL: accumulated factor mismatch at "
                << to_string(f.stage) << "\n";
      return 1;
    }
  }
  if (std::abs(acc - 1.0) > 1e-9) {
    std::cerr << "FAIL: committing an instruction must cost 1 unit\n";
    return 1;
  }
  double shares = 0.0;
  for (const auto& r : energy::kResourceShares) shares += r.fraction;
  if (std::abs(shares - 1.0) > 1e-9) {
    std::cerr << "FAIL: resource shares must sum to 1\n";
    return 1;
  }
  std::cout
      << "\nself-check: OK (accumulated = running sum, commit = 1 unit)\n";
  return 0;
}
