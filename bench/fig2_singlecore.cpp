/// Figure 2 — "Throughput in single-core SMT".
///
/// The paper's first experiment: all 2-thread workloads on one 2-context
/// SMT core, ICOUNT vs speculative FLUSH with a 30-cycle trigger (FL-S30).
/// Paper result: FLUSH wins everywhere memory-bound threads are present,
/// up to 93 % with a 22 % average speedup.
#include <iostream>

#include "common/table.h"
#include "core/factory.h"
#include "sim/backend.h"
#include "sim/report.h"
#include "sim/workloads.h"

int main() {
  using namespace mflush;

  // The whole figure is one declarative experiment: 5 two-thread
  // workloads x 2 policies, executed by the in-process backend.
  ExperimentSpec spec;
  spec.name = "fig2_singlecore";
  spec.workloads = workloads::of_size(2);
  spec.policies = {PolicySpec::icount(), PolicySpec::flush_spec(30)};
  spec.warmup = warmup_cycles();
  spec.measure = bench_cycles();

  std::cout << "== Figure 2: single-core SMT throughput (ICOUNT vs FLUSH-S30)"
            << "\n   measured " << spec.measure << " cycles after "
            << spec.warmup << " warm-up (paper: 120M)\n\n";

  Table table({"workload", "benchmarks", "ICOUNT", "FLUSH-S30", "speedup"});
  double sum_speedup = 0.0;
  double max_speedup = 0.0;
  const auto& workloads2 = spec.workloads;
  InProcessBackend backend;
  const auto rows =
      report::as_grid(run_experiment(spec, backend), spec.policies.size());
  for (std::size_t i = 0; i < workloads2.size(); ++i) {
    const Workload& w = workloads2[i];
    const RunResult& icount = rows[i][0];
    const RunResult& flush = rows[i][1];
    const double speedup = flush.metrics.ipc / icount.metrics.ipc - 1.0;
    sum_speedup += speedup;
    max_speedup = std::max(max_speedup, speedup);
    table.add_row({w.name, w.describe(), Table::num(icount.metrics.ipc),
                   Table::num(flush.metrics.ipc), Table::pct(speedup)});
  }
  table.add_row({"average", "", "", "",
                 Table::pct(sum_speedup / static_cast<double>(
                                              workloads2.size()))});
  table.print(std::cout);
  std::cout << "\nmax speedup " << Table::pct(max_speedup)
            << "  (paper: up to +93%, average +22%)\n";
  return 0;
}
