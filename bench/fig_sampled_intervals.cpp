/// fig_sampled_intervals — snapshot-forked interval sampling (not a paper
/// figure; methodology driver for the checkpointing engine).
///
/// For each policy: warm one chip once, capture a snapshot, then fork K
/// measured intervals off it in parallel — interval k advances k*stride
/// cycles past the checkpoint before measuring, so the K intervals sample
/// different phases of the same warmed execution. Compares the sampled
/// mean IPC against one contiguous long run of the same total length, and
/// reports the warm-up cycles the forks avoided re-simulating.
///
/// The last stdout line is a BENCH_*.json-compatible JSON object.
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "core/factory.h"
#include "sim/parallel.h"
#include "sim/snapshot.h"
#include "sim/workloads.h"

namespace {

using namespace mflush;

struct PolicyRow {
  std::string label;
  double long_ipc = 0.0;
  double sampled_ipc = 0.0;
  double rel_err = 0.0;
};

}  // namespace

int main() {
  const Workload wl = *workloads::by_name("2W3");
  const Cycle warm = warmup_cycles(20'000);
  const Cycle interval = bench_cycles(60'000) / 4;
  constexpr std::uint32_t kForks = 6;
  const Cycle stride = interval / 2;

  std::cout << "== fig_sampled_intervals: snapshot-forked interval "
               "sampling\n   workload "
            << wl.name << ", warm-up " << warm << " cycles (simulated once "
            << "per policy), " << kForks << " forks x " << interval
            << " measured cycles, stride " << stride << "\n\n";

  std::vector<PolicyRow> rows;
  Cycle warmup_cycles_saved = 0;
  for (const PolicySpec& policy :
       {PolicySpec::icount(), PolicySpec::flush_spec(30),
        PolicySpec::mflush()}) {
    // One parent chip warms; its checkpoint seeds every fork.
    CmpSimulator parent(wl, policy, /*seed=*/1);
    parent.run(warm);
    const auto snap =
        std::make_shared<const std::vector<std::uint8_t>>(
            snapshot::capture(parent));

    std::vector<SweepPoint> points(kForks);
    for (std::uint32_t k = 0; k < kForks; ++k) {
      points[k].measure = interval;
      points[k].snapshot = snap;
      points[k].fork_advance = static_cast<Cycle>(k) * stride;
    }
    const std::vector<RunResult> forks =
        ParallelRunner::shared().run(points);
    warmup_cycles_saved += static_cast<Cycle>(kForks - 1) * warm;

    // Reference: one contiguous run covering the same total span.
    const RunResult longrun = run_point(
        wl, policy, /*seed=*/1, warm,
        static_cast<Cycle>(kForks - 1) * stride + interval);

    PolicyRow row;
    row.label = forks.front().policy;
    row.long_ipc = longrun.metrics.ipc;
    double sum = 0.0;
    for (const RunResult& f : forks) sum += f.metrics.ipc;
    row.sampled_ipc = sum / kForks;
    row.rel_err = row.long_ipc > 0.0
                      ? std::abs(row.sampled_ipc - row.long_ipc) /
                            row.long_ipc
                      : 0.0;
    rows.push_back(row);

    std::cout << row.label << ": contiguous IPC " << row.long_ipc
              << ", sampled-mean IPC " << row.sampled_ipc << " (rel err "
              << row.rel_err * 100.0 << "%)\n";
  }

  double worst_err = 0.0;
  for (const PolicyRow& r : rows) worst_err = std::max(worst_err, r.rel_err);

  std::cout << "\nwarm-up cycles not re-simulated thanks to forking: "
            << warmup_cycles_saved << "\n";

  // Machine-readable trajectory record: keep this the last stdout line.
  std::cout << "{\"bench\":\"fig_sampled_intervals\",\"forks\":" << kForks
            << ",\"interval\":" << interval << ",\"stride\":" << stride
            << ",\"warmup_cycles_saved\":" << warmup_cycles_saved
            << ",\"worst_rel_err\":" << worst_err << "}" << std::endl;
  return 0;
}
