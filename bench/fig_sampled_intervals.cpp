/// fig_sampled_intervals — snapshot-forked interval sampling (not a paper
/// figure; methodology driver for the checkpointing engine).
///
/// Part 1 (fixed forks): a sampled-mode ExperimentSpec warms one chip per
/// policy, checkpoints it, and forks K measured intervals off the snapshot
/// — interval k advances k*stride cycles past the checkpoint, so the K
/// intervals sample different phases of the same warmed execution.
/// Compares the sampled mean IPC against one contiguous long run of the
/// same total length, and reports the warm-up cycles the forks avoided
/// re-simulating.
///
/// Part 2 (SMARTS-style stopping rule): the same experiment with a target
/// confidence half-width instead of a fixed fork count — run_experiment
/// keeps adding fork rounds until each point's mean IPC is tight enough.
///
/// The last stdout line is a BENCH_*.json-compatible JSON object.
#include <cmath>
#include <iostream>
#include <map>
#include <vector>

#include "core/factory.h"
#include "sim/backend.h"
#include "sim/workloads.h"

namespace {

using namespace mflush;

struct PolicyRow {
  std::string label;
  double long_ipc = 0.0;
  double sampled_ipc = 0.0;
  double rel_err = 0.0;
};

}  // namespace

int main() {
  ExperimentSpec spec;
  spec.name = "fig_sampled_intervals";
  spec.workloads = {*workloads::by_name("2W3")};
  spec.policies = {PolicySpec::icount(), PolicySpec::flush_spec(30),
                   PolicySpec::mflush()};
  spec.warmup = warmup_cycles(20'000);
  spec.measure = bench_cycles(60'000) / 4;
  spec.mode = RunMode::Sampled;
  spec.sampled.forks = 6;
  spec.sampled.fork_stride = spec.measure / 2;

  std::cout << "== fig_sampled_intervals: snapshot-forked interval "
               "sampling\n   workload "
            << spec.workloads.front().name << ", warm-up " << spec.warmup
            << " cycles (simulated once per policy), " << spec.sampled.forks
            << " forks x " << spec.measure << " measured cycles, stride "
            << spec.sampled.fork_stride << "\n\n";

  InProcessBackend backend;
  const std::vector<RunResult> forks = run_experiment(spec, backend);

  // Every fork skipped the parent's warm-up except the one implied parent
  // simulation per policy.
  const Cycle warmup_cycles_saved =
      static_cast<Cycle>(forks.size() - spec.policies.size()) * spec.warmup;

  std::vector<PolicyRow> rows;
  for (std::size_t p = 0; p < spec.policies.size(); ++p) {
    // Jobs are point-major: point p's forks occupy slots [p*K, (p+1)*K).
    const std::size_t base = p * spec.sampled.forks;
    double sum = 0.0;
    for (std::uint32_t k = 0; k < spec.sampled.forks; ++k)
      sum += forks[base + k].metrics.ipc;

    // Reference: one contiguous run covering the same total span.
    const RunResult longrun =
        run_point(spec.workloads.front(), spec.policies[p], /*seed=*/1,
                  spec.warmup,
                  static_cast<Cycle>(spec.sampled.forks - 1) *
                          spec.sampled.fork_stride +
                      spec.measure);

    PolicyRow row;
    row.label = forks[base].policy;
    row.long_ipc = longrun.metrics.ipc;
    row.sampled_ipc = sum / spec.sampled.forks;
    row.rel_err = row.long_ipc > 0.0
                      ? std::abs(row.sampled_ipc - row.long_ipc) /
                            row.long_ipc
                      : 0.0;
    rows.push_back(row);

    std::cout << row.label << ": contiguous IPC " << row.long_ipc
              << ", sampled-mean IPC " << row.sampled_ipc << " (rel err "
              << row.rel_err * 100.0 << "%)\n";
  }

  double worst_err = 0.0;
  for (const PolicyRow& r : rows) worst_err = std::max(worst_err, r.rel_err);

  std::cout << "\nwarm-up cycles not re-simulated thanks to forking: "
            << warmup_cycles_saved << "\n";

  // Part 2: the stopping rule. Same study, but instead of a fixed fork
  // count ask for a 5% relative confidence half-width; run_experiment adds
  // fork rounds per policy until the estimate converges (max 3 rounds).
  ExperimentSpec adaptive = spec;
  adaptive.name = "fig_sampled_intervals_adaptive";
  adaptive.sampled.forks = 3;
  adaptive.sampled.target_half_width = 0.05;
  adaptive.sampled.max_rounds = 3;
  const std::vector<RunResult> adaptive_forks =
      run_experiment(adaptive, backend);

  std::map<std::string, std::size_t> forks_per_policy;
  for (const RunResult& r : adaptive_forks) ++forks_per_policy[r.policy];
  std::cout << "\nSMARTS-style stopping rule (target half-width 5%):\n";
  for (const auto& [policy, n] : forks_per_policy)
    std::cout << "  " << policy << ": converged after " << n << " forks\n";

  // Machine-readable trajectory record: keep this the last stdout line.
  std::cout << "{\"bench\":\"fig_sampled_intervals\",\"forks\":"
            << spec.sampled.forks << ",\"interval\":" << spec.measure
            << ",\"stride\":" << spec.sampled.fork_stride
            << ",\"warmup_cycles_saved\":" << warmup_cycles_saved
            << ",\"worst_rel_err\":" << worst_err
            << ",\"adaptive_forks\":" << adaptive_forks.size() << "}"
            << std::endl;
  return 0;
}
