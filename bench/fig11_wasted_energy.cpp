/// Figure 11 — "FLUSH Wasted Energy".
///
/// Energy thrown away by the FLUSH mechanism (instructions flushed and
/// later re-fetched, weighed by the Fig. 10 accumulated factor of the
/// stage they reached), per workload and policy, in units per 1000
/// committed instructions. Paper result: MFLUSH saves ~20 % vs the
/// best-performing FLUSH-S100 while staying within ~2 % of its throughput.
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/factory.h"
#include "sim/backend.h"
#include "sim/report.h"
#include "sim/workloads.h"

int main() {
  using namespace mflush;

  ExperimentSpec spec;
  spec.name = "fig11_wasted_energy";
  for (const std::uint32_t threads : {4u, 6u, 8u})
    for (const Workload& w : workloads::of_size(threads))
      spec.workloads.push_back(w);
  spec.policies = {PolicySpec::flush_spec(30), PolicySpec::flush_spec(100),
                   PolicySpec::mflush()};
  spec.warmup = warmup_cycles();
  spec.measure = bench_cycles();

  std::cout << "== Figure 11: FLUSH wasted energy "
               "(units per 1000 committed instructions)"
            << "\n   measured " << spec.measure << " cycles after "
            << spec.warmup << " warm-up\n\n";

  InProcessBackend backend;
  const auto rows =
      report::as_grid(run_experiment(spec, backend), spec.policies.size());
  report::print_wasted_energy(std::cout, rows);

  double s30 = 0.0, s100 = 0.0, mflush_units = 0.0;
  for (const auto& row : rows) {
    s30 += row[0].metrics.energy.flush_wasted_per_kilo_commit();
    s100 += row[1].metrics.energy.flush_wasted_per_kilo_commit();
    mflush_units += row[2].metrics.energy.flush_wasted_per_kilo_commit();
  }
  std::cout << "\nMFLUSH vs FLUSH-S100: "
            << Table::pct(mflush_units / s100 - 1.0)
            << "   FLUSH-S100 vs FLUSH-S30: " << Table::pct(s100 / s30 - 1.0)
            << "\n(paper: MFLUSH ~-20% vs FLUSH-S100; FLUSH-S100 ~+10% vs "
               "FLUSH-S30)\n";
  return 0;
}
