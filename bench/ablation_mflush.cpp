/// Ablation study of the MFLUSH design choices (DESIGN.md §5) plus the
/// extension the paper names in §4.1 (MCReg history queues):
///   * Preventive State on/off (MFLUSH vs MFLUSH-NP)
///   * MCReg history depth and aggregation (H4 avg / H4 max)
///   * the response-action spectrum: STALL only, non-speculative FLUSH
///   * the priority-only baselines BRCOUNT / L1DMISSCOUNT
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/factory.h"
#include "sim/cmp.h"
#include "sim/parallel.h"
#include "sim/workloads.h"

int main() {
  using namespace mflush;

  const Cycle warm = warmup_cycles();
  const Cycle measure = bench_cycles();
  std::cout << "== Ablation: MFLUSH design choices on 4-core chips"
            << "\n   measured " << measure << " cycles after " << warm
            << " warm-up\n\n";

  const std::vector<PolicySpec> policies = {
      PolicySpec::icount(),
      PolicySpec::brcount(),
      PolicySpec::misscount(),
      PolicySpec::stall(30),
      PolicySpec::flush_ns(),
      PolicySpec::mflush(),
      PolicySpec::mflush_no_preventive(),
      PolicySpec::mflush_history(4, PolicySpec::McRegAgg::Avg),
      PolicySpec::mflush_history(4, PolicySpec::McRegAgg::Max),
  };
  const std::vector<Workload> subjects = {*workloads::by_name("8W1"),
                                          *workloads::by_name("8W3"),
                                          workloads::bzip2_twolf_special()};

  // 3 subjects x 9 policy variants = 27 independent points, one batch.
  struct PointStats {
    SimMetrics m;
    std::uint64_t false_flushes = 0;
    std::uint64_t gates = 0;
  };
  std::vector<PointStats> stats(subjects.size() * policies.size());
  ParallelRunner::shared().for_each_index(stats.size(), [&](std::size_t i) {
    const Workload& w = subjects[i / policies.size()];
    const PolicySpec& p = policies[i % policies.size()];
    CmpSimulator sim(w, p);
    sim.run(warm);
    sim.reset_stats();
    sim.run(measure);
    PointStats& out = stats[i];
    out.m = sim.metrics();
    for (CoreId c = 0; c < sim.num_cores(); ++c) {
      const auto pc = sim.core(c).policy().counters();
      out.false_flushes += pc.flushes_on_hit;
      out.gates += pc.gate_cycles;
    }
  });

  for (std::size_t s = 0; s < subjects.size(); ++s) {
    const Workload& w = subjects[s];
    std::cout << "-- " << w.name << " (" << w.describe() << ")\n";
    Table table({"policy", "IPC", "flushes", "false", "gate-cycles",
                 "wasted/1k"});
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      const PointStats& ps = stats[s * policies.size() + pi];
      table.add_row({policies[pi].label(), Table::num(ps.m.ipc),
                     std::to_string(ps.m.flush_events),
                     std::to_string(ps.false_flushes),
                     std::to_string(ps.gates),
                     Table::num(ps.m.energy.flush_wasted_per_kilo_commit(),
                                1)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
