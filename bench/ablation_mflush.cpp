/// Ablation study of the MFLUSH design choices (DESIGN.md §5) plus the
/// extension the paper names in §4.1 (MCReg history queues):
///   * Preventive State on/off (MFLUSH vs MFLUSH-NP)
///   * MCReg history depth and aggregation (H4 avg / H4 max)
///   * the response-action spectrum: STALL only, non-speculative FLUSH
///   * the priority-only baselines BRCOUNT / L1DMISSCOUNT
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/factory.h"
#include "sim/backend.h"
#include "sim/workloads.h"

int main() {
  using namespace mflush;

  // 3 subjects x 9 policy variants = 27 independent points, one
  // declarative experiment; the diagnostic counters ride inside
  // SimMetrics, so any backend (including worker processes) can serve it.
  ExperimentSpec spec;
  spec.name = "ablation_mflush";
  spec.workloads = {*workloads::by_name("8W1"), *workloads::by_name("8W3"),
                    workloads::bzip2_twolf_special()};
  spec.policies = {
      PolicySpec::icount(),
      PolicySpec::brcount(),
      PolicySpec::misscount(),
      PolicySpec::stall(30),
      PolicySpec::flush_ns(),
      PolicySpec::mflush(),
      PolicySpec::mflush_no_preventive(),
      PolicySpec::mflush_history(4, PolicySpec::McRegAgg::Avg),
      PolicySpec::mflush_history(4, PolicySpec::McRegAgg::Max),
  };
  spec.warmup = warmup_cycles();
  spec.measure = bench_cycles();

  std::cout << "== Ablation: MFLUSH design choices on 4-core chips"
            << "\n   measured " << spec.measure << " cycles after "
            << spec.warmup << " warm-up\n\n";

  InProcessBackend backend;
  const std::vector<RunResult> results = run_experiment(spec, backend);

  const std::size_t num_policies = spec.policies.size();
  for (std::size_t s = 0; s < spec.workloads.size(); ++s) {
    const Workload& w = spec.workloads[s];
    std::cout << "-- " << w.name << " (" << w.describe() << ")\n";
    Table table({"policy", "IPC", "flushes", "false", "gate-cycles",
                 "wasted/1k"});
    for (std::size_t pi = 0; pi < num_policies; ++pi) {
      const SimMetrics& m = results[s * num_policies + pi].metrics;
      table.add_row({spec.policies[pi].label(), Table::num(m.ipc),
                     std::to_string(m.flush_events),
                     std::to_string(m.policy_flushes_on_hit),
                     std::to_string(m.policy_gate_cycles),
                     Table::num(m.energy.flush_wasted_per_kilo_commit(), 1)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
