/// Ablation study of the MFLUSH design choices (DESIGN.md §5) plus the
/// extension the paper names in §4.1 (MCReg history queues):
///   * Preventive State on/off (MFLUSH vs MFLUSH-NP)
///   * MCReg history depth and aggregation (H4 avg / H4 max)
///   * the response-action spectrum: STALL only, non-speculative FLUSH
///   * the priority-only baselines BRCOUNT / L1DMISSCOUNT
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/factory.h"
#include "sim/cmp.h"
#include "sim/experiment.h"
#include "sim/workloads.h"

int main() {
  using namespace mflush;

  const Cycle warm = warmup_cycles();
  const Cycle measure = bench_cycles();
  std::cout << "== Ablation: MFLUSH design choices on 4-core chips"
            << "\n   measured " << measure << " cycles after " << warm
            << " warm-up\n\n";

  const std::vector<PolicySpec> policies = {
      PolicySpec::icount(),
      PolicySpec::brcount(),
      PolicySpec::misscount(),
      PolicySpec::stall(30),
      PolicySpec::flush_ns(),
      PolicySpec::mflush(),
      PolicySpec::mflush_no_preventive(),
      PolicySpec::mflush_history(4, PolicySpec::McRegAgg::Avg),
      PolicySpec::mflush_history(4, PolicySpec::McRegAgg::Max),
  };
  const std::vector<Workload> subjects = {*workloads::by_name("8W1"),
                                          *workloads::by_name("8W3"),
                                          workloads::bzip2_twolf_special()};

  for (const Workload& w : subjects) {
    std::cout << "-- " << w.name << " (" << w.describe() << ")\n";
    Table table({"policy", "IPC", "flushes", "false", "gate-cycles",
                 "wasted/1k"});
    for (const PolicySpec& p : policies) {
      CmpSimulator sim(w, p);
      sim.run(warm);
      sim.reset_stats();
      sim.run(measure);
      const SimMetrics m = sim.metrics();
      std::uint64_t false_flushes = 0, gates = 0;
      for (CoreId c = 0; c < sim.num_cores(); ++c) {
        const auto pc = sim.core(c).policy().counters();
        false_flushes += pc.flushes_on_hit;
        gates += pc.gate_cycles;
      }
      table.add_row(
          {p.label(), Table::num(m.ipc), std::to_string(m.flush_events),
           std::to_string(false_flushes), std::to_string(gates),
           Table::num(m.energy.flush_wasted_per_kilo_commit(), 1)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
