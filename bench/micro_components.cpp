/// Engineering micro-benchmarks (google-benchmark): throughput of the
/// simulator's hot components and of whole-chip simulation. Not a paper
/// figure — used to keep the simulator fast enough for the sweeps.
#include <benchmark/benchmark.h>

#include "branch/perceptron.h"
#include "core/factory.h"
#include "mem/cache.h"
#include "mem/hierarchy.h"
#include "sim/backend.h"
#include "sim/cmp.h"
#include "sim/workloads.h"
#include "trace/generator.h"
#include "trace/spec2000.h"

namespace {

using namespace mflush;

void BM_TraceGeneration(benchmark::State& state) {
  SyntheticTraceSource src(*spec2000::by_name("gzip"), 1, 4096, 0);
  SeqNo s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(src.at(s));
    src.retire_up_to(s > 2048 ? s - 2048 : 0);
    ++s;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(s));
}
BENCHMARK(BM_TraceGeneration);

void BM_CacheAccess(benchmark::State& state) {
  SetAssocCache cache(CacheGeometry{32 * 1024, 4, 64, 8});
  Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(a, false));
    a = (a + 64) & 0xffff;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess);

void BM_PerceptronPredict(benchmark::State& state) {
  PerceptronPredictor p(256, 4096, 24);
  Addr pc = 0x1000;
  for (auto _ : state) {
    const bool taken = p.predict(0, pc);
    p.update(0, pc, (pc >> 4) & 1, taken, p.history_checkpoint(0));
    p.push_history(0, taken);
    pc += 4;
    if (pc > 0x2000) pc = 0x1000;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PerceptronPredict);

void BM_HierarchyTick(benchmark::State& state) {
  SimConfig cfg = SimConfig::paper_default(4);
  MemoryHierarchy mem(cfg);
  Cycle now = 0;
  Addr a = 0;
  for (auto _ : state) {
    ++now;
    if (now % 4 == 0) mem.request_load(now % 4, 0, a += 4096, now);
    mem.tick(now);
    for (CoreId c = 0; c < 4; ++c) {
      mem.completions(c).clear();
      mem.l2_events(c).clear();
      mem.l2_miss_events(c).clear();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HierarchyTick);

void BM_FullChipCyclesPerSecond(benchmark::State& state) {
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  CmpSimulator sim(workloads::of_size(threads).front(),
                   PolicySpec::mflush());
  sim.run(5'000);  // warm
  for (auto _ : state) sim.run(100);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
  state.SetLabel("simulated cycles");
}
BENCHMARK(BM_FullChipCyclesPerSecond)->Arg(2)->Arg(8);

void BM_ParallelSweep(benchmark::State& state) {
  // Whole-sweep throughput through the in-process backend: 4 independent
  // (2W3, policy) jobs per iteration. With MFLUSH_JOBS=1 this measures
  // the serial baseline; the default measures the pool speedup.
  ExperimentSpec spec;
  spec.workloads = {*workloads::by_name("2W3")};
  spec.policies = {PolicySpec::icount(), PolicySpec::flush_spec(30),
                   PolicySpec::flush_spec(100), PolicySpec::mflush()};
  spec.warmup = 500;
  spec.measure = 2000;
  const std::vector<JobSpec> jobs = spec.expand();
  InProcessBackend backend;
  Cycle simulated = 0;
  for (auto _ : state) {
    const auto results = backend.run_collect(jobs);
    for (const RunResult& r : results) simulated += r.simulated_cycles;
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(simulated));
  state.SetLabel("simulated cycles, all points");
}
BENCHMARK(BM_ParallelSweep)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
