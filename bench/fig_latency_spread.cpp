/// fig_latency_spread — memory-latency spread vs fetch policy (extension,
/// not a paper figure).
///
/// The paper's Fig. 1 memory is a flat 250-cycle pipe, so every L2 miss is
/// equally costly and a policy only has to predict *whether* a load
/// missed. The banked-DRAM model spreads the miss cost (80-cycle row hits
/// to 400-cycle row conflicts, plus an optional +800 far-memory class),
/// which stresses the policies differently: FLUSH pays the full refetch on
/// every long miss, STALL holds its slot, and MFLUSH's flush/stall split
/// meets misses whose cost now varies by 10x.
///
/// Three chips per workload set, identical except for main memory:
///   uniform  — fixed 250-cycle pipe (the paper baseline)
///   dram     — banked DRAM, default knobs (2 ch x 8 banks, 80/250/400)
///   dram+far — same, with every line in the far class (+800 cycles)
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/factory.h"
#include "sim/backend.h"
#include "sim/report.h"
#include "sim/workloads.h"

int main() {
  using namespace mflush;

  struct MemVariant {
    std::string name;
    MemModelKind kind;
    bool far;
  };
  const std::vector<MemVariant> variants = {
      {"uniform-250", MemModelKind::Fixed, false},
      {"banked-dram", MemModelKind::BankedDram, false},
      {"dram+far", MemModelKind::BankedDram, true},
  };
  const std::vector<PolicySpec> policies = {
      PolicySpec::flush_spec(30), PolicySpec::stall(30), PolicySpec::mflush()};

  ExperimentSpec base;
  base.name = "fig_latency_spread";
  for (const Workload& w : workloads::of_size(4))
    base.workloads.push_back(w);
  base.policies = policies;
  base.warmup = warmup_cycles();
  base.measure = bench_cycles();

  std::cout << "== Latency spread: fetch policies vs the memory-latency "
               "distribution\n   "
            << base.workloads.size() << " 4-thread workloads, measured "
            << base.measure << " cycles after " << base.warmup
            << " warm-up\n\n";

  InProcessBackend backend;
  Table table({"memory", "FLUSH-S30", "STALL-S30", "MFLUSH",
               "MFLUSH vs FLUSH", "row-hit rate"});
  for (const MemVariant& v : variants) {
    ExperimentSpec spec = base;
    spec.name += "_" + v.name;
    spec.mem_model = v.kind;
    if (v.far) {
      // Trace addresses are salted into per-thread spaces above 2^40
      // (trace/generator.cpp), so "everything is far" needs the full range.
      spec.dram.far_base = 0;
      spec.dram.far_bytes = ~std::uint64_t{0};
    }
    const auto rows =
        report::as_grid(run_experiment(spec, backend), policies.size());

    std::vector<double> ipc(policies.size(), 0.0);
    std::uint64_t hits = 0, misses = 0, conflicts = 0;
    for (const auto& row : rows) {
      for (std::size_t p = 0; p < policies.size(); ++p) {
        ipc[p] += row[p].metrics.ipc;
        hits += row[p].metrics.dram_row_hits;
        misses += row[p].metrics.dram_row_misses;
        conflicts += row[p].metrics.dram_row_conflicts;
      }
    }
    const double n = static_cast<double>(rows.size());
    const std::uint64_t accesses = hits + misses + conflicts;
    table.add_row(
        {v.name, Table::num(ipc[0] / n), Table::num(ipc[1] / n),
         Table::num(ipc[2] / n), Table::pct(ipc[2] / ipc[0] - 1.0),
         accesses ? Table::pct(static_cast<double>(hits) /
                               static_cast<double>(accesses))
                  : "-"});
  }
  table.print(std::cout);
  std::cout << "\n(expected: the MFLUSH advantage widens as the latency "
               "distribution spreads — wrong flushes get dearer, and the "
               "far class punishes refetch hardest)\n";
  return 0;
}
