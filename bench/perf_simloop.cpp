/// perf_simloop — simulator-throughput benchmark (not a paper figure).
///
/// Runs the same 4-point sweep (2W3 under the four Fig. 8 policies) twice:
/// once serially (1 job) and once on the parallel experiment engine
/// (MFLUSH_JOBS or all hardware threads), verifies the two are
/// bit-identical, and reports simulated kilo-cycles per wall-clock second
/// (KIPS) for both.
///
/// A third scenario times the sampled-mode warm-store path: a fixed
/// 6-point sampled grid (2 workloads x 3 policies, 4 forks each) runs
/// against a cold store (parents warm as parallel jobs, entries written)
/// and again against the hot store (zero warm-up simulation), next to the
/// old serial warm-every-parent loop — `sweep_points_per_sec` tracks the
/// cold path, `sweep_points_per_sec_hot` the reuse path.
///
/// The last stdout line is a single JSON object (BENCH_*.json-compatible)
/// so CI can track the perf trajectory:
///   {"bench":"perf_simloop","jobs":4,...,"speedup":3.8,"identical":true}
///
/// Exit status: 0 on success, 1 when parallel metrics diverge from serial
/// (a determinism regression — never expected) or the hot sweep still
/// warmed something.
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <iostream>
#include <vector>

#include "core/factory.h"
#include "sim/backend.h"
#include "sim/cmp.h"
#include "sim/parallel.h"
#include "sim/snapshot.h"
#include "sim/warmstore.h"
#include "sim/workloads.h"

namespace {

using namespace mflush;

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  ExperimentSpec spec;
  spec.name = "perf_simloop";
  spec.workloads = {*workloads::by_name("2W3")};
  spec.policies = {PolicySpec::icount(), PolicySpec::flush_spec(30),
                   PolicySpec::flush_spec(100), PolicySpec::mflush()};
  spec.warmup = warmup_cycles(10'000);
  spec.measure = bench_cycles(60'000);
  const std::vector<JobSpec> jobs = spec.expand();

  const Cycle warm = spec.warmup;
  const Cycle measure = spec.measure;
  const auto total_cycles =
      static_cast<double>((warm + measure) * jobs.size());

  std::cout << "== perf_simloop: simulated-cycles-per-second, serial vs "
               "parallel backend\n   4-point sweep (2W3 x 4 policies), "
            << warm + measure << " cycles per point\n\n";

  SerialBackend serial;
  std::vector<RunResult> serial_results;
  // One untimed warm pass so both timed passes see hot caches/allocators.
  (void)serial.run_collect(jobs);
  const double serial_s =
      seconds_of([&] { serial_results = serial.run_collect(jobs); });

  InProcessBackend pool_backend;
  ParallelRunner& pool = ParallelRunner::shared();
  std::vector<RunResult> parallel_results;
  const double parallel_s = seconds_of(
      [&] { parallel_results = pool_backend.run_collect(jobs); });

  bool identical = serial_results.size() == parallel_results.size();
  for (std::size_t i = 0; identical && i < serial_results.size(); ++i)
    identical = serial_results[i].metrics == parallel_results[i].metrics;

  const double serial_kips = total_cycles / serial_s / 1e3;
  const double parallel_kips = total_cycles / parallel_s / 1e3;
  const double speedup = serial_s / parallel_s;

  // Chip-scale serial point (4 cores, MFLUSH): the per-cycle data
  // structures (wakeup wheel, LSQ issue list, policy token tables) scale
  // with chip size, which the 1-core sweep above barely exercises. Kept as
  // a separate JSON field so serial_kips stays comparable across runs.
  const Cycle big_cycles = warm + measure;
  double bigchip_s = 0.0;
  {
    const Workload wl = *workloads::by_name("8W3");
    CmpSimulator warm_sim(wl, PolicySpec::mflush(), 1);
    warm_sim.run(big_cycles);  // untimed warm pass
    bigchip_s = seconds_of([&] {
      CmpSimulator sim(wl, PolicySpec::mflush(), 1);
      sim.run(big_cycles);
    });
  }
  const double bigchip_kips = static_cast<double>(big_cycles) / bigchip_s / 1e3;

  // Banked-DRAM serial point (4 cores, MFLUSH): the wheel-scheduled
  // completion path plus per-access bank/channel reservation — the cost of
  // the memory-model seam's non-trivial branch. Separate JSON field so
  // serial_kips (fixed-latency) stays comparable across runs.
  double dram_s = 0.0;
  {
    const Workload wl = *workloads::by_name("8W3");
    SimConfig cfg = SimConfig::paper_default(wl.num_cores(), 1);
    cfg.mem.memory_model = MemModelKind::BankedDram;
    CmpSimulator warm_sim(cfg, wl, PolicySpec::mflush());
    warm_sim.run(big_cycles);  // untimed warm pass
    dram_s = seconds_of([&] {
      CmpSimulator sim(cfg, wl, PolicySpec::mflush());
      sim.run(big_cycles);
    });
  }
  const double dram_kips = static_cast<double>(big_cycles) / dram_s / 1e3;

  // Sampled-grid warm-store scenario: 6 points x 4 forks. The serial
  // warm-every-parent loop is the pre-warm-store baseline; the cold run
  // warms the same parents as parallel jobs while filling the store; the
  // hot run reuses every entry and must simulate zero warm-up cycles.
  ExperimentSpec sweep;
  sweep.name = "perf_sweep";
  sweep.workloads = {*workloads::by_name("2W3"), *workloads::by_name("2W1")};
  sweep.policies = {PolicySpec::icount(), PolicySpec::flush_spec(30),
                    PolicySpec::mflush()};
  sweep.warmup = warm;
  sweep.measure = measure;
  sweep.mode = RunMode::Sampled;
  sweep.sampled.forks = 4;
  sweep.sampled.fork_stride = measure / 2;
  const std::vector<JobSpec> sweep_jobs = sweep.expand();
  const auto sweep_points = static_cast<double>(sweep.num_points());

  const double warm_serial_s = seconds_of([&] {
    for (std::size_t p = 0; p < sweep.num_points(); ++p) {
      const JobSpec& j = sweep_jobs[p * sweep.sampled.forks];
      CmpSimulator parent(j.workload, j.policy, j.seed);
      parent.run(j.warmup);
      (void)snapshot::capture(parent);
    }
  });

  const std::filesystem::path store_dir =
      std::filesystem::temp_directory_path() /
      ("mflush-perfsweep-" + std::to_string(::getpid()));
  std::filesystem::remove_all(store_dir);

  std::vector<RunResult> sweep_cold, sweep_hot;
  WarmStore store(store_dir.string());
  RunOptions ropts;
  ropts.warm_store = &store;
  const double sweep_cold_s = seconds_of([&] {
    ResultSink sink;
    sweep_cold = run_experiment(sweep, pool_backend, sink, ropts);
  });
  const WarmStore::Stats cold_stats = store.stats();
  const double sweep_hot_s = seconds_of([&] {
    ResultSink sink;
    sweep_hot = run_experiment(sweep, pool_backend, sink, ropts);
  });
  const WarmStore::Stats hot_stats = store.stats();
  std::filesystem::remove_all(store_dir);
  // The hot pass warmed nothing iff the store gained no entries and saw no
  // new misses after the cold pass.
  const bool zero_warm_hot = hot_stats.stored == cold_stats.stored &&
                             hot_stats.misses == cold_stats.misses;

  // Store-less serial reference last: it reuses the in-process registry,
  // so it adds no warm-up time but pins the bit-identity contract.
  SerialBackend sweep_serial;
  ResultSink sweep_serial_sink;
  const std::vector<RunResult> sweep_ref =
      run_experiment(sweep, sweep_serial, sweep_serial_sink);
  bool sweep_identical = sweep_cold.size() == sweep_ref.size() &&
                         sweep_hot.size() == sweep_ref.size();
  for (std::size_t i = 0; sweep_identical && i < sweep_ref.size(); ++i) {
    sweep_identical = sweep_cold[i].metrics == sweep_ref[i].metrics &&
                      sweep_hot[i].metrics == sweep_ref[i].metrics;
  }

  const double sweep_pps = sweep_points / sweep_cold_s;
  const double sweep_pps_hot = sweep_points / sweep_hot_s;

  std::cout << "serial   (1 job):   " << serial_s << " s, " << serial_kips
            << " KIPS\n"
            << "parallel (" << pool.jobs() << " jobs): " << parallel_s
            << " s, " << parallel_kips << " KIPS\n"
            << "speedup: " << speedup << "x, metrics "
            << (identical ? "bit-identical" : "DIVERGED") << "\n"
            << "8W3 chip (serial): " << bigchip_s << " s, " << bigchip_kips
            << " KIPS\n"
            << "8W3 chip (serial, banked DRAM): " << dram_s << " s, "
            << dram_kips << " KIPS\n"
            << "sampled sweep (" << sweep.num_points() << " points, "
            << sweep_jobs.size() << " forks): warm-serial "
            << warm_serial_s << " s, cold " << sweep_cold_s << " s ("
            << sweep_pps << " points/s), hot " << sweep_hot_s << " s ("
            << sweep_pps_hot << " points/s), "
            << (zero_warm_hot ? "zero warm-up on hot" : "HOT RUN WARMED")
            << ", metrics "
            << (sweep_identical ? "bit-identical" : "DIVERGED") << "\n\n";

  // Machine-readable trajectory record: keep this the last stdout line.
  std::cout << "{\"bench\":\"perf_simloop\",\"jobs\":" << pool.jobs()
            << ",\"points\":" << jobs.size()
            << ",\"cycles_per_point\":" << warm + measure
            << ",\"serial_seconds\":" << serial_s
            << ",\"parallel_seconds\":" << parallel_s
            << ",\"serial_kips\":" << serial_kips
            << ",\"parallel_kips\":" << parallel_kips
            << ",\"bigchip_serial_kips\":" << bigchip_kips
            << ",\"dram_serial_kips\":" << dram_kips
            << ",\"speedup\":" << speedup << ",\"identical\":"
            << (identical ? "true" : "false")
            << ",\"sweep_points\":" << sweep.num_points()
            << ",\"sweep_jobs\":" << sweep_jobs.size()
            << ",\"sweep_warm_serial_seconds\":" << warm_serial_s
            << ",\"sweep_cold_seconds\":" << sweep_cold_s
            << ",\"sweep_hot_seconds\":" << sweep_hot_s
            << ",\"sweep_points_per_sec\":" << sweep_pps
            << ",\"sweep_points_per_sec_hot\":" << sweep_pps_hot
            << ",\"sweep_zero_warm_hot\":" << (zero_warm_hot ? "true" : "false")
            << ",\"sweep_identical\":" << (sweep_identical ? "true" : "false")
            << "}" << std::endl;

  return identical && sweep_identical && zero_warm_hot ? 0 : 1;
}
