/// perf_simloop — simulator-throughput benchmark (not a paper figure).
///
/// Runs the same 4-point sweep (2W3 under the four Fig. 8 policies) twice:
/// once serially (1 job) and once on the parallel experiment engine
/// (MFLUSH_JOBS or all hardware threads), verifies the two are
/// bit-identical, and reports simulated kilo-cycles per wall-clock second
/// (KIPS) for both.
///
/// The last stdout line is a single JSON object (BENCH_*.json-compatible)
/// so CI can track the perf trajectory:
///   {"bench":"perf_simloop","jobs":4,...,"speedup":3.8,"identical":true}
///
/// Exit status: 0 on success, 1 when parallel metrics diverge from serial
/// (a determinism regression — never expected).
#include <chrono>
#include <functional>
#include <iostream>
#include <vector>

#include "core/factory.h"
#include "sim/backend.h"
#include "sim/cmp.h"
#include "sim/parallel.h"
#include "sim/workloads.h"

namespace {

using namespace mflush;

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  ExperimentSpec spec;
  spec.name = "perf_simloop";
  spec.workloads = {*workloads::by_name("2W3")};
  spec.policies = {PolicySpec::icount(), PolicySpec::flush_spec(30),
                   PolicySpec::flush_spec(100), PolicySpec::mflush()};
  spec.warmup = warmup_cycles(10'000);
  spec.measure = bench_cycles(60'000);
  const std::vector<JobSpec> jobs = spec.expand();

  const Cycle warm = spec.warmup;
  const Cycle measure = spec.measure;
  const auto total_cycles =
      static_cast<double>((warm + measure) * jobs.size());

  std::cout << "== perf_simloop: simulated-cycles-per-second, serial vs "
               "parallel backend\n   4-point sweep (2W3 x 4 policies), "
            << warm + measure << " cycles per point\n\n";

  SerialBackend serial;
  std::vector<RunResult> serial_results;
  // One untimed warm pass so both timed passes see hot caches/allocators.
  (void)serial.run_collect(jobs);
  const double serial_s =
      seconds_of([&] { serial_results = serial.run_collect(jobs); });

  InProcessBackend pool_backend;
  ParallelRunner& pool = ParallelRunner::shared();
  std::vector<RunResult> parallel_results;
  const double parallel_s = seconds_of(
      [&] { parallel_results = pool_backend.run_collect(jobs); });

  bool identical = serial_results.size() == parallel_results.size();
  for (std::size_t i = 0; identical && i < serial_results.size(); ++i)
    identical = serial_results[i].metrics == parallel_results[i].metrics;

  const double serial_kips = total_cycles / serial_s / 1e3;
  const double parallel_kips = total_cycles / parallel_s / 1e3;
  const double speedup = serial_s / parallel_s;

  // Chip-scale serial point (4 cores, MFLUSH): the per-cycle data
  // structures (wakeup wheel, LSQ issue list, policy token tables) scale
  // with chip size, which the 1-core sweep above barely exercises. Kept as
  // a separate JSON field so serial_kips stays comparable across runs.
  const Cycle big_cycles = warm + measure;
  double bigchip_s = 0.0;
  {
    const Workload wl = *workloads::by_name("8W3");
    CmpSimulator warm_sim(wl, PolicySpec::mflush(), 1);
    warm_sim.run(big_cycles);  // untimed warm pass
    bigchip_s = seconds_of([&] {
      CmpSimulator sim(wl, PolicySpec::mflush(), 1);
      sim.run(big_cycles);
    });
  }
  const double bigchip_kips = static_cast<double>(big_cycles) / bigchip_s / 1e3;

  std::cout << "serial   (1 job):   " << serial_s << " s, " << serial_kips
            << " KIPS\n"
            << "parallel (" << pool.jobs() << " jobs): " << parallel_s
            << " s, " << parallel_kips << " KIPS\n"
            << "speedup: " << speedup << "x, metrics "
            << (identical ? "bit-identical" : "DIVERGED") << "\n"
            << "8W3 chip (serial): " << bigchip_s << " s, " << bigchip_kips
            << " KIPS\n\n";

  // Machine-readable trajectory record: keep this the last stdout line.
  std::cout << "{\"bench\":\"perf_simloop\",\"jobs\":" << pool.jobs()
            << ",\"points\":" << jobs.size()
            << ",\"cycles_per_point\":" << warm + measure
            << ",\"serial_seconds\":" << serial_s
            << ",\"parallel_seconds\":" << parallel_s
            << ",\"serial_kips\":" << serial_kips
            << ",\"parallel_kips\":" << parallel_kips
            << ",\"bigchip_serial_kips\":" << bigchip_kips
            << ",\"speedup\":" << speedup << ",\"identical\":"
            << (identical ? "true" : "false") << "}" << std::endl;

  return identical ? 0 : 1;
}
