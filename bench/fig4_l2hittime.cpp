/// Figure 4 — "Average L2 cache hit time".
///
/// Cycles from LSQ issue until service for loads that HIT the shared L2,
/// measured under ICOUNT (it does not perturb the access pattern), per
/// chip size. Paper result: both the mean and the dispersion grow with the
/// number of SMT cores; at 4 cores about half the hits spread over
/// 20-70 cycles, so no single FLUSH trigger fits.
#include <iostream>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "core/factory.h"
#include "sim/backend.h"
#include "sim/workloads.h"

int main() {
  using namespace mflush;

  // All 20 workloads under ICOUNT as one declarative experiment; the
  // RunResults carry the full L2 hit-time histogram, which is merged per
  // chip size in deterministic job-id order below.
  ExperimentSpec spec;
  spec.name = "fig4_l2hittime";
  for (const std::uint32_t threads : {2u, 4u, 6u, 8u})
    for (const Workload& w : workloads::of_size(threads))
      spec.workloads.push_back(w);
  spec.policies = {PolicySpec::icount()};
  spec.warmup = warmup_cycles();
  spec.measure = bench_cycles();

  std::cout << "== Figure 4: L2 hit time (issue->served) vs core count"
            << "\n   ICOUNT policy, measured " << spec.measure
            << " cycles after " << spec.warmup << " warm-up\n\n";

  InProcessBackend backend;
  const std::vector<RunResult> results = run_experiment(spec, backend);

  Table table({"threads", "cores", "hits", "mean", "p50", "p90",
               "frac 20-40", "frac 40-70", "frac >70"});
  std::size_t idx = 0;
  for (const std::uint32_t threads : {2u, 4u, 6u, 8u}) {
    Histogram merged(5.0, 80);
    const std::size_t count = workloads::of_size(threads).size();
    for (std::size_t k = 0; k < count; ++k)
      merged.merge(results[idx++].metrics.l2_hit_time_hist);
    table.add_row({std::to_string(threads), std::to_string(threads / 2),
                   std::to_string(merged.count()),
                   Table::num(merged.mean(), 1),
                   Table::num(merged.quantile(0.5), 1),
                   Table::num(merged.quantile(0.9), 1),
                   Table::num(merged.fraction_between(20, 40), 3),
                   Table::num(merged.fraction_between(40, 70), 3),
                   Table::num(merged.fraction_between(70, 400), 3)});
  }
  table.print(std::cout);
  std::cout << "\n(paper: unloaded hit = 22 cycles; at 4 cores ~half the "
               "hits spread across 20-70 cycles)\n";
  return 0;
}
