/// Figure 8 — "Throughput Results".
///
/// The paper's main throughput evaluation: every 4/6/8-thread workload
/// under ICOUNT, FLUSH-S30, FLUSH-S100 and MFLUSH. Paper result:
/// FLUSH-S100 is usually best; MFLUSH lands within ~2 % of it without any
/// a-priori trigger (winning 4W4/6W4/8W1); FLUSH-S30 can fall below
/// ICOUNT (4W1/6W1/8W4).
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/factory.h"
#include "sim/backend.h"
#include "sim/report.h"
#include "sim/workloads.h"

int main() {
  using namespace mflush;

  // The paper's biggest campaign (15 workloads x 4 policies = 60 points)
  // as one declarative experiment on the in-process backend.
  ExperimentSpec spec;
  spec.name = "fig8_throughput";
  for (const std::uint32_t threads : {4u, 6u, 8u})
    for (const Workload& w : workloads::of_size(threads))
      spec.workloads.push_back(w);
  spec.policies = {PolicySpec::icount(), PolicySpec::flush_spec(30),
                   PolicySpec::flush_spec(100), PolicySpec::mflush()};
  spec.warmup = warmup_cycles();
  spec.measure = bench_cycles();

  std::cout << "== Figure 8: throughput per workload and IFetch policy"
            << "\n   measured " << spec.measure << " cycles after "
            << spec.warmup << " warm-up\n\n";

  InProcessBackend backend;
  const auto rows =
      report::as_grid(run_experiment(spec, backend), spec.policies.size());
  report::print_throughput(std::cout, rows);

  // The paper's headline comparison: MFLUSH vs the best static FLUSH.
  double mflush_sum = 0.0, s100_sum = 0.0;
  for (const auto& row : rows) {
    s100_sum += row[2].metrics.ipc;
    mflush_sum += row[3].metrics.ipc;
  }
  std::cout << "\nMFLUSH vs FLUSH-S100 average: "
            << mflush::Table::pct(mflush_sum / s100_sum - 1.0)
            << "  (paper: MFLUSH within ~2% without a-priori trigger)\n";
  return 0;
}
